// Thermal trace: dump a per-block temperature time series (CSV to stdout)
// for one run, suitable for plotting heating transients, cooling stalls
// and toggle events. Demonstrates driving the simulator's components
// manually instead of through sim.Simulator.
//
//	go run ./examples/thermal_trace > trace.csv
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/trace"
)

func main() {
	benchmark := "eon"
	if len(os.Args) > 1 {
		benchmark = os.Args[1]
	}

	cfg := config.Default()
	cfg.Plan = config.PlanIQConstrained
	cfg.Techniques.IQ = config.IQToggle

	prof, err := trace.ByName(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	plan := floorplan.Build(cfg.Plan)
	meter := power.NewMeter(plan, cfg)
	pipe, err := pipeline.New(cfg, plan, meter, trace.NewGenerator(prof))
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermal.New(plan, cfg)
	if err != nil {
		log.Fatal(err)
	}
	mgr := core.New(cfg, plan, pipe, th)

	pipe.Warmup(3_000_000)

	// Columns: time (ms of thermal time), a few interesting blocks, and
	// event markers.
	watch := []string{
		floorplan.IntQ0, floorplan.IntQ1,
		floorplan.IntReg0, floorplan.IntReg1,
		"IntExec0", "IntExec5", floorplan.ICache,
	}
	fmt.Print("ms")
	for _, b := range watch {
		fmt.Printf(",%s", b)
	}
	fmt.Println(",stalled,toggles")

	interval := cfg.SensorIntervalCycles
	spc := cfg.ThermalSecondsPerCycle()
	pow := make([]float64, plan.NumBlocks())
	thermalMS := 0.0
	emit := func(stalled int) {
		fmt.Printf("%.3f", thermalMS)
		for _, b := range watch {
			fmt.Printf(",%.2f", th.TempByName(b))
		}
		fmt.Printf(",%d,%d\n", stalled, mgr.IntToggles+mgr.FPToggles)
	}

	for cycles := int64(0); cycles < 4_000_000; {
		for i := 0; i < interval; i++ {
			pipe.Cycle()
		}
		cycles += int64(interval)
		meter.Drain(interval, 0, pow)
		th.Advance(pow, float64(interval)*spc)
		thermalMS += float64(interval) * spc * 1000
		emit(0)

		if stall := mgr.Control(); stall > 0 {
			// Cooling stall: idle power only.
			for stall > 0 {
				chunk := interval
				if stall < chunk {
					chunk = stall
				}
				meter.Drain(0, chunk, pow)
				th.Advance(pow, float64(chunk)*spc)
				thermalMS += float64(chunk) * spc * 1000
				cycles += int64(chunk)
				stall -= chunk
				emit(1)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "done: IPC=%.3f stalls=%d toggles=%d\n",
		pipe.IPC(), mgr.Stalls, mgr.IntToggles+mgr.FPToggles)
}
