package repro_test

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/floorplan"
)

// TestPaperShapeALUExperiment asserts the qualitative Figure 7 / Table 5
// result end-to-end on a shortened window: fine-grain turnoff rescues an
// ALU-constrained benchmark to within a few percent of the round-robin
// bound, while an unconstrained benchmark is untouched.
func TestPaperShapeALUExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end thermal experiment")
	}
	spec := experiments.Fig7(benchCycles, "perlbmk", "parser")
	spec.Warmup = benchWarmup
	m, err := experiments.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	base := m.Get("perlbmk", "base")
	fgt := m.Get("perlbmk", "fine-grain-turnoff")
	rr := m.Get("perlbmk", "round-robin")
	if base.Stalls == 0 {
		t.Skip("window too short to overheat perlbmk")
	}
	if fgt.IPC <= base.IPC {
		t.Fatalf("fine-grain turnoff did not beat base: %.3f vs %.3f", fgt.IPC, base.IPC)
	}
	if fgt.IPC < 0.9*rr.IPC {
		t.Fatalf("fine-grain turnoff %.3f too far below round-robin %.3f", fgt.IPC, rr.IPC)
	}
	if fgt.Stalls >= base.Stalls {
		t.Fatalf("turnoff did not reduce stalls: %d vs %d", fgt.Stalls, base.Stalls)
	}
	// The paper's Table 5 signature: under turnoff the hot ALUs run
	// hotter than under base (tolerated instead of stalled) and the
	// low-priority ALUs stay cooler than the hot ones.
	if avgK(fgt, "IntExec0") <= avgK(base, "IntExec0") {
		t.Error("fine-grain turnoff should run ALU0 hotter than the stalling base")
	}
	if avgK(fgt, "IntExec5") >= avgK(fgt, "IntExec0") {
		t.Error("low-priority ALU not cooler than ALU0 under turnoff")
	}

	// parser: unconstrained, identical across techniques.
	for _, v := range []string{"base", "fine-grain-turnoff", "round-robin"} {
		r := m.Get("parser", v)
		if r.Stalls != 0 || r.ALUTurnoffs != 0 {
			t.Errorf("parser/%s: unexpected thermal events", v)
		}
	}
	if m.Get("parser", "base").IPC != m.Get("parser", "fine-grain-turnoff").IPC {
		t.Error("parser IPC changed with technique despite never overheating")
	}
}

// TestPaperShapeRFExperiment asserts Figure 8's ordering on eon: adding
// fine-grain turnoff to priority mapping must win over priority-only, and
// balanced mapping must equalize the copy temperatures better than
// priority mapping.
func TestPaperShapeRFExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end thermal experiment")
	}
	spec := experiments.Fig8(benchCycles, "eon")
	spec.Warmup = benchWarmup
	m, err := experiments.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	prioOnly := m.Get("eon", "priority-only")
	fgtPrio := m.Get("eon", "fgt+priority")
	balOnly := m.Get("eon", "balanced-only")
	if prioOnly.Stalls == 0 {
		t.Skip("window too short to overheat the register file")
	}
	if fgtPrio.IPC <= prioOnly.IPC {
		t.Fatalf("fgt+priority %.3f did not beat priority-only %.3f", fgtPrio.IPC, prioOnly.IPC)
	}
	if fgtPrio.RFCopyTurnoffs == 0 {
		t.Fatal("fgt+priority never turned a copy off")
	}
	gapPrio := avgK(prioOnly, floorplan.IntReg0) - avgK(prioOnly, floorplan.IntReg1)
	gapBal := avgK(balOnly, floorplan.IntReg0) - avgK(balOnly, floorplan.IntReg1)
	if gapBal >= gapPrio {
		t.Fatalf("balanced mapping copy gap %.2f not below priority's %.2f", gapBal, gapPrio)
	}
}

// TestPaperShapeToggling asserts the Table 4 signature on a shortened
// window: the base runs the tail half hotter; toggling equalizes.
func TestPaperShapeToggling(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end thermal experiment")
	}
	spec := experiments.Fig6(benchCycles, "gzip", "art")
	spec.Warmup = benchWarmup
	m, err := experiments.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Get("gzip", "base")
	tog := m.Get("gzip", "activity-toggling")
	baseGap := avgK(base, floorplan.IntQ1) - avgK(base, floorplan.IntQ0)
	togGap := avgK(tog, floorplan.IntQ1) - avgK(tog, floorplan.IntQ0)
	if baseGap <= 0 {
		t.Fatalf("base tail half not hotter than head (gap %.2f)", baseGap)
	}
	if togGap >= baseGap/2 {
		t.Fatalf("toggling did not equalize the halves: %.2f -> %.2f", baseGap, togGap)
	}
	if tog.IntToggles+tog.FPToggles == 0 {
		t.Fatal("no toggles fired on a hot benchmark")
	}
	// art never overheats and never toggles.
	art := m.Get("art", "activity-toggling")
	if art.Stalls != 0 || art.IntToggles+art.FPToggles != 0 {
		t.Errorf("art should be thermally idle: %d stalls, %d toggles",
			art.Stalls, art.IntToggles+art.FPToggles)
	}
	// DVFS smoke: the temporal experiment runs end to end.
	tspec := experiments.Temporal(benchCycles/2, "gzip")
	tspec.Warmup = benchWarmup
	tm, err := experiments.Run(context.Background(), tspec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Get("gzip", "dvfs") == nil {
		t.Fatal("temporal experiment incomplete")
	}
	_ = config.Default() // keep import for future shape checks
}
